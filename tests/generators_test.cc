#include "tkc/gen/generators.h"

#include <algorithm>

#include <gtest/gtest.h>
#include "tkc/graph/connectivity.h"
#include "tkc/graph/triangle.h"
#include "tkc/util/random.h"

namespace tkc {
namespace {

TEST(GeneratorsTest, ErdosRenyiDensity) {
  Rng rng(1);
  Graph g = ErdosRenyi(200, 0.1, rng);
  double expected = 0.1 * 200 * 199 / 2;
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), expected, expected * 0.25);
}

TEST(GeneratorsTest, ErdosRenyiEdgeCases) {
  Rng rng(2);
  EXPECT_EQ(ErdosRenyi(50, 0.0, rng).NumEdges(), 0u);
  EXPECT_EQ(ErdosRenyi(10, 1.0, rng).NumEdges(), 45u);
}

TEST(GeneratorsTest, ErdosRenyiDeterministic) {
  Rng a(7), b(7);
  Graph ga = ErdosRenyi(60, 0.2, a);
  Graph gb = ErdosRenyi(60, 0.2, b);
  ASSERT_EQ(ga.NumEdges(), gb.NumEdges());
  ga.ForEachEdge([&](EdgeId, const Edge& e) {
    EXPECT_TRUE(gb.HasEdge(e.u, e.v));
  });
}

TEST(GeneratorsTest, GnmExactEdgeCount) {
  Rng rng(3);
  Graph g = GnmRandom(100, 321, rng);
  EXPECT_EQ(g.NumEdges(), 321u);
  EXPECT_EQ(g.NumVertices(), 100u);
}

TEST(GeneratorsTest, BarabasiAlbertShape) {
  Rng rng(4);
  const VertexId n = 300;
  const uint32_t m = 3;
  Graph g = BarabasiAlbert(n, m, rng);
  EXPECT_EQ(g.NumVertices(), n);
  // m(m+1)/2 seed edges + m per subsequent vertex.
  EXPECT_EQ(g.NumEdges(), m * (m + 1) / 2 + (n - m - 1) * m);
  // Scale-free-ish: max degree well above m.
  uint32_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) max_deg = std::max(max_deg, g.Degree(v));
  EXPECT_GT(max_deg, 3 * m);
  // Attachment keeps the graph connected.
  EXPECT_EQ(ConnectedComponents(g).num_components, 1u);
}

TEST(GeneratorsTest, PowerLawClusterHasMoreTrianglesThanBA) {
  Rng rng1(5), rng2(5);
  Graph ba = BarabasiAlbert(400, 3, rng1);
  Graph plc = PowerLawCluster(400, 3, 0.8, rng2);
  EXPECT_GT(CountTriangles(plc), CountTriangles(ba));
}

TEST(GeneratorsTest, PlantedPartitionCommunities) {
  Rng rng(6);
  std::vector<uint32_t> community;
  Graph g = PlantedPartition(4, 20, 0.6, 0.02, rng, &community);
  ASSERT_EQ(community.size(), 80u);
  EXPECT_EQ(community[0], 0u);
  EXPECT_EQ(community[79], 3u);
  // Intra-community edges should dominate.
  size_t intra = 0, inter = 0;
  g.ForEachEdge([&](EdgeId, const Edge& e) {
    (community[e.u] == community[e.v] ? intra : inter)++;
  });
  EXPECT_GT(intra, 4 * inter);
}

TEST(GeneratorsTest, FixedTopologies) {
  EXPECT_EQ(CompleteGraph(7).NumEdges(), 21u);
  EXPECT_EQ(CycleGraph(9).NumEdges(), 9u);
  EXPECT_EQ(PathGraph(9).NumEdges(), 8u);
  EXPECT_EQ(StarGraph(9).NumEdges(), 9u);
  EXPECT_EQ(StarGraph(9).Degree(0), 9u);
}

TEST(GeneratorsTest, Figure2GraphShape) {
  Graph g = PaperFigure2Graph();
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.NumEdges(), 8u);
  EXPECT_EQ(CountTriangles(g), 5u);
}

TEST(GeneratorsTest, PlantCliqueAddsAllPairs) {
  Graph g(10);
  PlantClique(g, {1, 4, 7, 9});
  EXPECT_EQ(g.NumEdges(), 6u);
  EXPECT_TRUE(g.HasEdge(1, 9));
  // Planting again is idempotent.
  PlantClique(g, {1, 4, 7, 9});
  EXPECT_EQ(g.NumEdges(), 6u);
}

TEST(GeneratorsTest, PlantRandomCliqueMembersDistinct) {
  Rng rng(8);
  Graph g(50);
  auto members = PlantRandomClique(g, 8, rng);
  ASSERT_EQ(members.size(), 8u);
  EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
  EXPECT_TRUE(std::adjacent_find(members.begin(), members.end()) ==
              members.end());
  EXPECT_EQ(g.NumEdges(), 28u);
}

}  // namespace
}  // namespace tkc
