#include "tkc/core/triangle_core.h"

#include <algorithm>

#include <gtest/gtest.h>
#include "tkc/baselines/naive.h"
#include "tkc/core/core_extraction.h"
#include "tkc/gen/generators.h"
#include "tkc/graph/triangle.h"
#include "tkc/util/random.h"

namespace tkc {
namespace {

std::vector<uint32_t> LiveKappas(const Graph& g,
                                 const std::vector<uint32_t>& kappa) {
  std::vector<uint32_t> out;
  g.ForEachEdge([&](EdgeId e, const Edge&) { out.push_back(kappa[e]); });
  return out;
}

TEST(TriangleCoreTest, EmptyGraph) {
  Graph g;
  TriangleCoreResult r = ComputeTriangleCores(g);
  EXPECT_EQ(r.max_kappa, 0u);
  EXPECT_EQ(r.triangle_count, 0u);
  EXPECT_TRUE(r.peel_sequence.empty());
}

TEST(TriangleCoreTest, TriangleFreeGraphAllZero) {
  Graph g = CycleGraph(12);
  TriangleCoreResult r = ComputeTriangleCores(g);
  EXPECT_EQ(r.max_kappa, 0u);
  g.ForEachEdge([&](EdgeId e, const Edge&) { EXPECT_EQ(r.kappa[e], 0u); });
}

TEST(TriangleCoreTest, PaperFigure2Example) {
  // The worked example of Section IV-A: κ(AB) = κ(AC) = 1, all other edges
  // κ = 2.
  Graph g = PaperFigure2Graph();
  TriangleCoreResult r = ComputeTriangleCores(g);
  constexpr VertexId kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;
  EXPECT_EQ(r.kappa[g.FindEdge(kA, kB)], 1u);
  EXPECT_EQ(r.kappa[g.FindEdge(kA, kC)], 1u);
  EXPECT_EQ(r.kappa[g.FindEdge(kB, kC)], 2u);
  EXPECT_EQ(r.kappa[g.FindEdge(kB, kD)], 2u);
  EXPECT_EQ(r.kappa[g.FindEdge(kB, kE)], 2u);
  EXPECT_EQ(r.kappa[g.FindEdge(kC, kD)], 2u);
  EXPECT_EQ(r.kappa[g.FindEdge(kC, kE)], 2u);
  EXPECT_EQ(r.kappa[g.FindEdge(kD, kE)], 2u);
  EXPECT_EQ(r.max_kappa, 2u);
  EXPECT_EQ(r.triangle_count, 5u);
}

TEST(TriangleCoreTest, CliqueHasKappaNMinus2) {
  // Section III: an n-vertex clique is an n-vertex Triangle K-Core with
  // number n-2.
  for (VertexId n : {3, 4, 5, 8, 12}) {
    Graph g = CompleteGraph(n);
    TriangleCoreResult r = ComputeTriangleCores(g);
    EXPECT_EQ(r.max_kappa, n - 2u) << "n=" << n;
    g.ForEachEdge([&](EdgeId e, const Edge&) {
      EXPECT_EQ(r.kappa[e], n - 2u);
    });
  }
}

TEST(TriangleCoreTest, KappaNeverExceedsSupport) {
  Rng rng(31);
  Graph g = PowerLawCluster(200, 3, 0.7, rng);
  TriangleCoreResult r = ComputeTriangleCores(g);
  auto support = ComputeEdgeSupports(g);
  g.ForEachEdge([&](EdgeId e, const Edge&) {
    EXPECT_LE(r.kappa[e], support[e]);
  });
}

TEST(TriangleCoreTest, PeelSequenceMonotoneAndOrdersConsistent) {
  Rng rng(37);
  Graph g = ErdosRenyi(60, 0.15, rng);
  TriangleCoreResult r = ComputeTriangleCores(g);
  ASSERT_EQ(r.peel_sequence.size(), g.NumEdges());
  uint32_t prev = 0;
  for (size_t i = 0; i < r.peel_sequence.size(); ++i) {
    EdgeId e = r.peel_sequence[i];
    EXPECT_EQ(r.order[e], i);
    EXPECT_GE(r.kappa[e], prev);  // κ along the peel is non-decreasing
    prev = r.kappa[e];
  }
}

TEST(TriangleCoreTest, StorageModesAgree) {
  for (uint64_t seed : {1, 7, 19}) {
    Rng rng(seed);
    Graph g = PowerLawCluster(150, 3, 0.6, rng);
    auto stored = ComputeTriangleCores(g, TriangleStorageMode::kStoreTriangles);
    auto recomputed =
        ComputeTriangleCores(g, TriangleStorageMode::kRecomputeTriangles);
    EXPECT_EQ(stored.kappa, recomputed.kappa) << "seed=" << seed;
    EXPECT_EQ(stored.max_kappa, recomputed.max_kappa);
    EXPECT_EQ(stored.triangle_count, recomputed.triangle_count);
  }
}

TEST(TriangleCoreTest, Theorem1HoldsOnDecomposition) {
  Rng rng(43);
  Graph g = PlantedPartition(4, 12, 0.5, 0.03, rng);
  TriangleCoreResult r = ComputeTriangleCores(g);
  EXPECT_TRUE(VerifyTheorem1(g, r.kappa));
}

TEST(TriangleCoreTest, PlantedCliqueDominatesBackground) {
  Rng rng(47);
  Graph g = GnmRandom(300, 600, rng);
  auto members = PlantRandomClique(g, 12, rng);
  TriangleCoreResult r = ComputeTriangleCores(g);
  // Every intra-clique edge reaches at least κ = 10 (= 12-2).
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      EdgeId e = g.FindEdge(members[i], members[j]);
      ASSERT_NE(e, kInvalidEdge);
      EXPECT_GE(r.kappa[e], 10u);
    }
  }
  EXPECT_GE(r.max_kappa, 10u);
}

TEST(TriangleCoreTest, DeadEdgeIdsKeepZeroKappaAndInvalidOrder) {
  Graph g = CompleteGraph(5);
  EdgeId dead = g.FindEdge(0, 1);
  g.RemoveEdgeById(dead);
  TriangleCoreResult r = ComputeTriangleCores(g);
  EXPECT_EQ(r.kappa[dead], 0u);
  EXPECT_EQ(r.order[dead], kInvalidOrder);
}

TEST(TriangleCoreTest, CocliqueSizeIsKappaPlus2) {
  Graph g = CompleteGraph(6);
  TriangleCoreResult r = ComputeTriangleCores(g);
  EdgeId e = g.FindEdge(0, 1);
  EXPECT_EQ(r.CocliqueSize(e), 6u);
}

// Property sweep: Algorithm 1 must agree with the brute-force
// iterated-deletion decomposition on every random model.
struct SweepParam {
  uint64_t seed;
  int model;  // 0 = ER, 1 = Gnm+clique, 2 = BA, 3 = planted partition
};

class TriangleCoreMatchesNaive
    : public ::testing::TestWithParam<SweepParam> {};

Graph MakeModelGraph(const SweepParam& p) {
  Rng rng(p.seed);
  switch (p.model) {
    case 0:
      return ErdosRenyi(45, 0.15, rng);
    case 1: {
      Graph g = GnmRandom(60, 120, rng);
      PlantRandomClique(g, 8, rng);
      return g;
    }
    case 2:
      return PowerLawCluster(70, 3, 0.7, rng);
    default:
      return PlantedPartition(3, 13, 0.55, 0.04, rng);
  }
}

TEST_P(TriangleCoreMatchesNaive, Decomposition) {
  Graph g = MakeModelGraph(GetParam());
  TriangleCoreResult fast = ComputeTriangleCores(g);
  std::vector<uint32_t> slow = NaiveTriangleCores(g);
  EXPECT_EQ(LiveKappas(g, fast.kappa), LiveKappas(g, slow));
}

INSTANTIATE_TEST_SUITE_P(
    Models, TriangleCoreMatchesNaive,
    ::testing::Values(SweepParam{1, 0}, SweepParam{2, 0}, SweepParam{3, 0},
                      SweepParam{4, 1}, SweepParam{5, 1}, SweepParam{6, 1},
                      SweepParam{7, 2}, SweepParam{8, 2}, SweepParam{9, 2},
                      SweepParam{10, 3}, SweepParam{11, 3},
                      SweepParam{12, 3}));

}  // namespace
}  // namespace tkc
