#include "tkc/gen/datasets.h"

#include <gtest/gtest.h>
#include "tkc/graph/triangle.h"

namespace tkc {
namespace {

TEST(DatasetsTest, RegistryCoversTableI) {
  auto specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 10u);
  EXPECT_EQ(specs.front().name, "synthetic");
  EXPECT_EQ(specs.back().name, "livejournal");
  for (const auto& spec : specs) {
    EXPECT_GT(spec.paper_vertices, 0u);
    EXPECT_GT(spec.paper_edges, 0u);
    EXPECT_FALSE(spec.model.empty());
  }
}

TEST(DatasetsTest, GetSpecByName) {
  DatasetSpec spec = GetDatasetSpec("ppi");
  EXPECT_EQ(spec.paper_name, "PPI");
  EXPECT_EQ(spec.paper_vertices, 4741u);
}

TEST(DatasetsTest, SmallOnesMatchPaperScale) {
  Dataset synthetic = MakeDataset("synthetic", 1);
  EXPECT_NEAR(synthetic.graph.NumVertices(), 60, 4);
  EXPECT_NEAR(static_cast<double>(synthetic.graph.NumEdges()), 308, 120);

  Dataset stocks = MakeDataset("stocks", 1);
  EXPECT_NEAR(stocks.graph.NumVertices(), 275, 6);
  EXPECT_NEAR(static_cast<double>(stocks.graph.NumEdges()), 1680, 450);
}

TEST(DatasetsTest, PpiHasLabeledComplexes) {
  Dataset ppi = MakeDataset("ppi", 7, 0.25);
  ASSERT_EQ(ppi.labels.size(), ppi.graph.NumVertices());
  uint32_t max_label = 0;
  for (uint32_t l : ppi.labels) max_label = std::max(max_label, l);
  EXPECT_GE(max_label, 2u);
  // Complexes are planted cliques: triangle-rich.
  EXPECT_GT(CountTriangles(ppi.graph), 100u);
}

TEST(DatasetsTest, Deterministic) {
  Dataset a = MakeDataset("dblp", 11, 0.1);
  Dataset b = MakeDataset("dblp", 11, 0.1);
  EXPECT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  a.graph.ForEachEdge([&](EdgeId, const Edge& e) {
    EXPECT_TRUE(b.graph.HasEdge(e.u, e.v));
  });
  Dataset c = MakeDataset("dblp", 12, 0.1);
  EXPECT_NE(a.graph.NumEdges(), c.graph.NumEdges());
}

TEST(DatasetsTest, SizeFactorScales) {
  Dataset big = MakeDataset("wiki", 3, 0.02);
  Dataset small = MakeDataset("wiki", 3, 0.01);
  EXPECT_GT(big.graph.NumVertices(), small.graph.NumVertices());
}

TEST(DatasetsTest, CollaborationDatasetsAreTriangleRich) {
  Dataset dblp = MakeDataset("dblp", 5, 0.2);
  TriangleStats stats = ComputeTriangleStats(dblp.graph);
  EXPECT_GT(stats.triangle_count, dblp.graph.NumEdges() / 10);
}

}  // namespace
}  // namespace tkc
