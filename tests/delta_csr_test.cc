// DeltaCsr: the mutable overlay view over an immutable shared CSR base.
// Differential tests hold it to the reference `Graph` under identical
// mutation streams (structure, ids, triangle counts, κ through the shared
// peel kernels), plus targeted checks for the COW overlay footprint, the
// EdgeId discipline across compactions, and epoch/zero-copy semantics.

#include <memory>
#include <vector>

#include <gtest/gtest.h>
#include "tkc/core/triangle_core.h"
#include "tkc/gen/generators.h"
#include "tkc/graph/delta_csr.h"
#include "tkc/graph/graph.h"
#include "tkc/util/random.h"
#include "tkc/verify/certificate.h"

namespace tkc {
namespace {

// Full structural equality between the reference Graph and the view:
// vertex/edge counts, per-vertex adjacency, live edge ids and endpoints.
void ExpectSameStructure(const Graph& ref, const DeltaCsr& view,
                         const char* where) {
  ASSERT_EQ(ref.NumVertices(), view.NumVertices()) << where;
  ASSERT_EQ(ref.NumEdges(), view.NumEdges()) << where;
  ASSERT_EQ(ref.EdgeCapacity(), view.EdgeCapacity()) << where;
  for (VertexId v = 0; v < ref.NumVertices(); ++v) {
    ASSERT_EQ(ref.Degree(v), view.Degree(v)) << where << " vertex " << v;
    const auto& ref_adj = ref.Neighbors(v);
    DeltaCsr::NeighborSpan adj = view.Neighbors(v);
    ASSERT_EQ(ref_adj.size(), static_cast<size_t>(adj.size()))
        << where << " vertex " << v;
    for (size_t i = 0; i < ref_adj.size(); ++i) {
      EXPECT_EQ(ref_adj[i].vertex, adj[i].vertex) << where;
      EXPECT_EQ(ref_adj[i].edge, adj[i].edge) << where;
    }
  }
  ASSERT_EQ(ref.EdgeIds(), view.EdgeIds()) << where;
  for (EdgeId e : ref.EdgeIds()) {
    ASSERT_TRUE(view.IsEdgeAlive(e)) << where;
    EXPECT_EQ(ref.GetEdge(e).u, view.GetEdge(e).u) << where;
    EXPECT_EQ(ref.GetEdge(e).v, view.GetEdge(e).v) << where;
  }
}

TEST(DeltaCsrTest, MirrorsGraphUnderRandomChurn) {
  Rng rng(4242);
  Graph ref = PowerLawCluster(80, 3, 0.5, rng);
  DeltaCsr view(ref);
  ExpectSameStructure(ref, view, "initial");

  for (int step = 0; step < 300; ++step) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(80));
    VertexId v = static_cast<VertexId>(rng.NextBounded(80));
    if (u == v) continue;
    if (ref.HasEdge(u, v)) {
      EdgeId removed_ref = ref.RemoveEdge(u, v);
      EdgeId removed_view = view.RemoveEdge(u, v);
      ASSERT_EQ(removed_ref, removed_view) << "step " << step;
    } else {
      EdgeId added_ref = ref.AddEdge(u, v);
      EdgeId added_view = view.AddEdge(u, v);
      ASSERT_EQ(added_ref, added_view) << "step " << step;
    }
    if (step % 60 == 0) ExpectSameStructure(ref, view, "churn");
  }
  ExpectSameStructure(ref, view, "final");

  // Compacting rewrites the base but must not change the observable view
  // — including every live EdgeId (attribute arrays stay valid).
  view.Compact();
  ExpectSameStructure(ref, view, "after compact");
}

TEST(DeltaCsrTest, CopyOnWriteTouchesOnlyMutatedVertices) {
  Rng rng(9);
  Graph base = GnmRandom(50, 120, rng);
  DeltaCsr view(base);
  EXPECT_EQ(view.OverlaidVertices(), 0u);
  EXPECT_FALSE(view.Dirty());

  view.AddEdge(0, 1, nullptr);  // may or may not exist yet
  // Each mutation copies at most its two endpoints.
  EXPECT_LE(view.OverlaidVertices(), 2u);

  view.RemoveEdge(0, 1);
  EXPECT_LE(view.OverlaidVertices(), 2u);
  EXPECT_TRUE(view.Dirty());
}

TEST(DeltaCsrTest, FindAndCommonNeighborsAcrossBaseAndDelta) {
  // A triangle in the base plus one delta vertex closing new triangles:
  // the sorted-merge paths must mix base spans and overlay vectors.
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  DeltaCsr view(g);

  VertexId w = view.AddVertex();
  EXPECT_EQ(view.NumVertices(), 4u);
  view.AddEdge(0, w, nullptr);
  view.AddEdge(1, w, nullptr);

  EXPECT_TRUE(view.HasEdge(0, w));
  EXPECT_EQ(view.CountCommonNeighbors(0, 1), 2u);  // 2 and w
  EXPECT_EQ(view.CountCommonNeighbors(0, w), 1u);  // 1
  size_t triangles_on_0w = 0;
  view.ForEachCommonNeighbor(0, w, [&](VertexId c, EdgeId, EdgeId) {
    EXPECT_EQ(c, 1u);
    ++triangles_on_0w;
  });
  EXPECT_EQ(triangles_on_0w, 1u);

  // Remove a base edge: both the id table and the merge paths must see it.
  EdgeId dead = view.RemoveEdge(0, 2);
  ASSERT_NE(dead, kInvalidEdge);
  EXPECT_FALSE(view.IsEdgeAlive(dead));
  EXPECT_EQ(view.CountCommonNeighbors(0, 1), 1u);  // just w now
}

TEST(DeltaCsrTest, EdgeIdsSurviveCompactionAndAreNeverReused) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  DeltaCsr view(g);
  const size_t base_cap = view.EdgeCapacity();

  bool inserted = false;
  EdgeId fresh = view.AddEdge(3, 4, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_GE(fresh, base_cap);  // delta ids start past the base capacity

  // Duplicate insert returns the live id without allocating.
  EdgeId dup = view.AddEdge(3, 4, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(dup, fresh);
  EXPECT_EQ(view.EdgeCapacity(), base_cap + 1);

  view.Compact();
  EXPECT_TRUE(view.IsEdgeAlive(fresh));
  EXPECT_EQ(view.FindEdge(3, 4), fresh);

  // A removed id stays dead forever; re-inserting allocates a new id.
  view.RemoveEdgeById(fresh);
  EXPECT_FALSE(view.IsEdgeAlive(fresh));
  EdgeId again = view.AddEdge(3, 4, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_NE(again, fresh);
}

TEST(DeltaCsrTest, EpochAndSharedBaseSemantics) {
  Rng rng(77);
  Graph g = GnmRandom(30, 60, rng);
  DeltaCsr view(g);
  EXPECT_EQ(view.epoch(), 0u);

  std::shared_ptr<const CsrGraph> before = view.base_ptr();
  view.AddEdge(0, 1, nullptr);
  // Mutation never touches the shared base object.
  EXPECT_EQ(view.base_ptr().get(), before.get());

  std::shared_ptr<const CsrGraph> after = view.Compact();
  EXPECT_EQ(view.epoch(), 1u);
  EXPECT_NE(after.get(), before.get());
  EXPECT_EQ(view.base_ptr().get(), after.get());
  EXPECT_FALSE(view.Dirty());

  // The pre-compaction snapshot keeps working (zero-copy handoff contract):
  // `before` still describes the old epoch's graph.
  EXPECT_EQ(before->NumVertices(), 30u);
}

TEST(DeltaCsrTest, TriangleCoresMatchGraphPathOnMutatedView) {
  // The decomposition computed through the DeltaCsr read path must equal
  // the legacy Graph path edge-for-edge after identical mutations.
  Rng rng(1234);
  Graph ref = PowerLawCluster(60, 3, 0.6, rng);
  DeltaCsr view(ref);
  for (int step = 0; step < 120; ++step) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(60));
    VertexId v = static_cast<VertexId>(rng.NextBounded(60));
    if (u == v) continue;
    if (ref.HasEdge(u, v)) {
      ref.RemoveEdge(u, v);
      view.RemoveEdge(u, v);
    } else {
      ref.AddEdge(u, v);
      view.AddEdge(u, v, nullptr);
    }
  }
  TriangleCoreResult from_graph = ComputeTriangleCores(ref);
  TriangleCoreResult from_view = ComputeTriangleCores(view);
  EXPECT_EQ(from_graph.max_kappa, from_view.max_kappa);
  EXPECT_EQ(from_graph.triangle_count, from_view.triangle_count);
  ref.ForEachEdge([&](EdgeId e, const Edge&) {
    ASSERT_EQ(from_graph.kappa[e], from_view.kappa[e]) << "edge " << e;
  });
  // And the code-independent certificate accepts the view's decomposition.
  verify::VerifyReport cert =
      verify::CheckKappaCertificate(view, from_view.kappa);
  EXPECT_TRUE(cert.AllPassed()) << cert.FirstFailure()->name;
}

}  // namespace
}  // namespace tkc
