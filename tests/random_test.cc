#include "tkc/util/random.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace tkc {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, InRangeInclusive) {
  Rng rng(3);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t x = rng.NextInRange(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    lo_hit |= (x == -2);
    hi_hit |= (x == 2);
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, SampleDistinctIsDistinctAndInRange) {
  Rng rng(13);
  for (uint64_t population : {10ull, 100ull, 100000ull}) {
    for (uint64_t count : {0ull, 1ull, 5ull, 10ull}) {
      auto sample = rng.SampleDistinct(population, count);
      ASSERT_EQ(sample.size(), count);
      std::set<uint64_t> uniq(sample.begin(), sample.end());
      EXPECT_EQ(uniq.size(), count);
      for (uint64_t s : sample) EXPECT_LT(s, population);
    }
  }
}

TEST(RngTest, SampleDistinctFullPopulation) {
  Rng rng(17);
  auto sample = rng.SampleDistinct(20, 20);
  std::sort(sample.begin(), sample.end());
  for (uint64_t i = 0; i < 20; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, PowerLawWithinCap) {
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.NextPowerLaw(2.5, 50);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 50u);
  }
}

TEST(RngTest, PowerLawSkewsLow) {
  Rng rng(23);
  int ones = 0;
  for (int i = 0; i < 5000; ++i) ones += (rng.NextPowerLaw(2.5, 50) == 1);
  EXPECT_GT(ones, 2500);  // gamma 2.5 puts most mass at 1
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(SplitMixTest, Deterministic) {
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
}

}  // namespace
}  // namespace tkc
