#include "tkc/viz/density_plot.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>
#include "tkc/core/triangle_core.h"
#include "tkc/gen/generators.h"
#include "tkc/util/random.h"

namespace tkc {
namespace {

std::vector<uint32_t> KappaPlus2(const Graph& g) {
  TriangleCoreResult r = ComputeTriangleCores(g);
  std::vector<uint32_t> co(g.EdgeCapacity(), 0);
  g.ForEachEdge([&](EdgeId e, const Edge&) { co[e] = r.kappa[e] + 2; });
  return co;
}

TEST(DensityPlotTest, EmptyGraph) {
  Graph g;
  DensityPlot plot = BuildDensityPlot(g, {});
  EXPECT_TRUE(plot.points.empty());
  EXPECT_EQ(plot.MaxValue(), 0u);
}

TEST(DensityPlotTest, EveryVertexPlottedExactlyOnce) {
  Rng rng(1);
  Graph g = PowerLawCluster(150, 3, 0.6, rng);
  DensityPlot plot = BuildDensityPlot(g, KappaPlus2(g));
  ASSERT_EQ(plot.points.size(), g.NumVertices());
  std::set<VertexId> seen;
  for (const auto& p : plot.points) {
    EXPECT_TRUE(seen.insert(p.vertex).second);
  }
}

TEST(DensityPlotTest, CliqueFormsPlateauAtCliqueHeight) {
  Rng rng(2);
  Graph g = GnmRandom(200, 350, rng);
  auto members = PlantRandomClique(g, 11, rng);
  DensityPlot plot = BuildDensityPlot(g, KappaPlus2(g));
  // The 11 clique vertices must be plotted contiguously at value >= 11,
  // starting at position 0 (densest region first).
  for (size_t i = 0; i < members.size(); ++i) {
    EXPECT_GE(plot.points[i].value, 11u) << "position " << i;
    EXPECT_TRUE(std::find(members.begin(), members.end(),
                          plot.points[i].vertex) != members.end())
        << "position " << i;
  }
  auto plateaus = FindPlateaus(plot, 11, 8);
  ASSERT_FALSE(plateaus.empty());
  EXPECT_GE(plateaus[0].vertices.size(), 11u - 1);
}

TEST(DensityPlotTest, TwoCliquesTwoPlateaus) {
  Graph g(40);
  PlantClique(g, {0, 1, 2, 3, 4, 5, 6, 7});          // 8-clique
  PlantClique(g, {20, 21, 22, 23, 24, 25});          // 6-clique
  DensityPlot plot = BuildDensityPlot(g, KappaPlus2(g));
  auto plateaus = FindPlateaus(plot, 6, 4);
  ASSERT_GE(plateaus.size(), 2u);
  EXPECT_EQ(plateaus[0].value, 8u);
  EXPECT_EQ(plateaus[1].value, 6u);
}

TEST(DensityPlotTest, ZeroVerticesToggle) {
  Graph g(10);
  PlantClique(g, {0, 1, 2, 3});
  auto co = KappaPlus2(g);
  DensityPlot all = BuildDensityPlot(g, co, true);
  DensityPlot dense = BuildDensityPlot(g, co, false);
  EXPECT_EQ(all.points.size(), 10u);
  // Only the clique and anything reachable from it is plotted.
  EXPECT_EQ(dense.points.size(), 4u);
}

TEST(DensityPlotTest, PositionOf) {
  Graph g(5);
  PlantClique(g, {0, 1, 2});
  DensityPlot plot = BuildDensityPlot(g, KappaPlus2(g));
  EXPECT_GE(plot.PositionOf(1), 0);
  EXPECT_EQ(plot.PositionOf(99), -1);
}

TEST(DensityPlotTest, DeterministicOrdering) {
  Rng rng(3);
  Graph g = PowerLawCluster(100, 3, 0.5, rng);
  auto co = KappaPlus2(g);
  DensityPlot a = BuildDensityPlot(g, co);
  DensityPlot b = BuildDensityPlot(g, co);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].vertex, b.points[i].vertex);
    EXPECT_EQ(a.points[i].value, b.points[i].value);
  }
}

TEST(DensityPlotTest, ComparePlotsIdentical) {
  Rng rng(4);
  Graph g = PowerLawCluster(80, 3, 0.5, rng);
  auto co = KappaPlus2(g);
  DensityPlot a = BuildDensityPlot(g, co);
  PlotComparison cmp = ComparePlots(a, a);
  EXPECT_DOUBLE_EQ(cmp.value_correlation, 1.0);
  EXPECT_DOUBLE_EQ(cmp.mean_abs_diff, 0.0);
  EXPECT_DOUBLE_EQ(cmp.identical_fraction, 1.0);
}

TEST(DensityPlotTest, ComparePlotsDetectsDifference) {
  Graph g(6);
  PlantClique(g, {0, 1, 2, 3});
  auto co = KappaPlus2(g);
  DensityPlot a = BuildDensityPlot(g, co);
  auto co2 = co;
  for (auto& v : co2) {
    if (v > 0) v += 3;
  }
  DensityPlot b = BuildDensityPlot(g, co2);
  PlotComparison cmp = ComparePlots(a, b);
  EXPECT_GT(cmp.mean_abs_diff, 0.0);
  EXPECT_LT(cmp.identical_fraction, 1.0);
  EXPECT_EQ(cmp.max_abs_diff, 3.0);
}

TEST(DensityPlotTest, CsvSerialization) {
  Graph g(3);
  PlantClique(g, {0, 1, 2});
  DensityPlot plot = BuildDensityPlot(g, KappaPlus2(g));
  std::string csv = PlotToCsv(plot);
  EXPECT_NE(csv.find("index,vertex,co_clique_size"), std::string::npos);
  EXPECT_NE(csv.find("0,"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);  // header + 3
}

TEST(DensityPlotTest, FindPlateausRespectsMinLength) {
  DensityPlot plot;
  for (uint32_t i = 0; i < 3; ++i) plot.points.push_back({i, 10});
  for (uint32_t i = 3; i < 5; ++i) plot.points.push_back({i, 2});
  for (uint32_t i = 5; i < 12; ++i) plot.points.push_back({i, 8});
  auto long_only = FindPlateaus(plot, 8, 5);
  ASSERT_EQ(long_only.size(), 1u);
  EXPECT_EQ(long_only[0].begin, 5u);
  auto both = FindPlateaus(plot, 8, 2);
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0].value, 10u);  // sorted by value desc
}

}  // namespace
}  // namespace tkc
