// Differential and edge-case coverage for the intersection kernels: the
// merge/gallop hybrid (intersect.h) against the SSE/AVX2 block kernels and
// the dispatch layer (intersect_simd.h). Every kernel must emit identical
// (w, ea, eb) triples in identical order — the bit-identical contract the
// whole triangle path rests on.

#include "tkc/graph/intersect.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "tkc/graph/intersect_simd.h"
#include "tkc/util/random.h"

namespace tkc {
namespace {

using Triple = std::tuple<VertexId, EdgeId, EdgeId>;

std::vector<Triple> RunHybrid(const std::vector<Neighbor>& a,
                              const std::vector<Neighbor>& b,
                              IntersectStats* stats = nullptr,
                              size_t cutoff = kGallopCutoffRatio) {
  IntersectStats local;
  IntersectStats& s = stats ? *stats : local;
  std::vector<Triple> out;
  IntersectSortedHybrid(
      a.data(), a.data() + a.size(), b.data(), b.data() + b.size(), s,
      [&](VertexId w, EdgeId ea, EdgeId eb) { out.emplace_back(w, ea, eb); },
      cutoff);
  return out;
}

std::vector<Triple> RunDispatch(IntersectKernel kernel,
                                const std::vector<Neighbor>& a,
                                const std::vector<Neighbor>& b,
                                IntersectStats* stats = nullptr) {
  IntersectStats local;
  IntersectStats& s = stats ? *stats : local;
  std::vector<Triple> out;
  IntersectDispatch(
      ResolveKernel(kernel), a.data(), a.data() + a.size(), b.data(),
      b.data() + b.size(), s,
      [&](VertexId w, EdgeId ea, EdgeId eb) { out.emplace_back(w, ea, eb); });
  return out;
}

// Sorted list of n entries: vertices = base + i*stride, edges tagged with
// `tag` in the high bits so a-side and b-side ids are distinguishable.
std::vector<Neighbor> MakeList(uint32_t n, uint32_t base, uint32_t stride,
                               uint32_t tag) {
  std::vector<Neighbor> out(n);
  for (uint32_t i = 0; i < n; ++i) {
    out[i] = Neighbor{base + i * stride, (tag << 24) | i};
  }
  return out;
}

std::vector<Neighbor> RandomSortedList(uint32_t n, uint32_t universe,
                                       uint32_t tag, Rng& rng) {
  std::vector<bool> member(universe, false);
  for (uint32_t i = 0; i < n; ++i) {
    member[static_cast<size_t>(rng.NextBounded(universe))] = true;
  }
  std::vector<Neighbor> out;
  uint32_t id = 0;
  for (uint32_t v = 0; v < universe; ++v) {
    if (member[v]) out.push_back(Neighbor{v, (tag << 24) | id++});
  }
  return out;
}

const IntersectKernel kAllKernels[] = {
    IntersectKernel::kScalar, IntersectKernel::kSse, IntersectKernel::kAvx2,
    IntersectKernel::kBitmap, IntersectKernel::kAuto};

TEST(IntersectHybridTest, EmptyLists) {
  const std::vector<Neighbor> empty;
  const auto some = MakeList(5, 0, 2, 1);
  EXPECT_TRUE(RunHybrid(empty, empty).empty());
  EXPECT_TRUE(RunHybrid(empty, some).empty());
  EXPECT_TRUE(RunHybrid(some, empty).empty());
  for (IntersectKernel k : kAllKernels) {
    EXPECT_TRUE(RunDispatch(k, empty, some).empty()) << KernelName(k);
    EXPECT_TRUE(RunDispatch(k, some, empty).empty()) << KernelName(k);
  }
}

TEST(IntersectHybridTest, SingleElementLists) {
  const std::vector<Neighbor> one{Neighbor{7, 100}};
  const std::vector<Neighbor> hit{Neighbor{7, 200}};
  const std::vector<Neighbor> miss{Neighbor{8, 300}};
  EXPECT_EQ(RunHybrid(one, hit), (std::vector<Triple>{{7, 100, 200}}));
  EXPECT_TRUE(RunHybrid(one, miss).empty());
  // Single element against a long list: 1 vs 17+ engages the gallop path
  // (ratio 17 > 16); the emitted edge pairing must keep argument order.
  const auto longer = MakeList(40, 0, 1, 3);
  IntersectStats stats;
  const auto out = RunHybrid(one, longer, &stats);
  EXPECT_EQ(out, (std::vector<Triple>{{7, 100, (3u << 24) | 7}}));
  EXPECT_GT(stats.gallop_probes, 0u);
  EXPECT_EQ(stats.merge_steps, 0u);
}

TEST(IntersectHybridTest, CutoffStraddle) {
  // 64 vs 4 entries is ratio 16 — NOT over the cutoff (strict >), so the
  // merge runs; 65 vs 4 is ratio 16.25 — over, so the gallop runs. The
  // values returned must not change across the knee.
  const auto small = MakeList(4, 0, 16, 1);
  const auto at = MakeList(64, 0, 1, 2);
  const auto over = MakeList(65, 0, 1, 2);
  IntersectStats s_at, s_over;
  const auto out_at = RunHybrid(at, small, &s_at);
  const auto out_over = RunHybrid(over, small, &s_over);
  EXPECT_EQ(s_at.gallop_probes, 0u);
  EXPECT_GT(s_at.merge_steps, 0u);
  EXPECT_GT(s_over.gallop_probes, 0u);
  EXPECT_EQ(s_over.merge_steps, 0u);
  ASSERT_EQ(out_at.size(), 4u);
  ASSERT_EQ(out_over.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(std::get<0>(out_at[i]), std::get<0>(out_over[i]));
    // ea comes from the first range (the long one here), eb from the small.
    EXPECT_EQ(std::get<2>(out_at[i]), std::get<2>(out_over[i]));
  }
}

TEST(IntersectHybridTest, CutoffKnobSelectsRegime) {
  // Same 100:10 pair, knob swept: cutoff below the ratio forces gallop,
  // above forces merge, and the output never changes.
  const auto a = MakeList(100, 0, 1, 1);
  const auto b = MakeList(10, 0, 10, 2);
  IntersectStats gallop_stats, merge_stats;
  const auto out_gallop = RunHybrid(a, b, &gallop_stats, /*cutoff=*/4);
  const auto out_merge = RunHybrid(a, b, &merge_stats, /*cutoff=*/1000);
  EXPECT_EQ(out_gallop, out_merge);
  EXPECT_EQ(out_gallop.size(), 10u);
  EXPECT_GT(gallop_stats.gallop_probes, 0u);
  EXPECT_EQ(gallop_stats.merge_steps, 0u);
  EXPECT_GT(merge_stats.merge_steps, 0u);
  EXPECT_EQ(merge_stats.gallop_probes, 0u);
}

TEST(IntersectSimdTest, KernelNameParseRoundTrip) {
  for (IntersectKernel k : kAllKernels) {
    IntersectKernel parsed = IntersectKernel::kScalar;
    EXPECT_TRUE(ParseKernel(KernelName(k), &parsed)) << KernelName(k);
    EXPECT_EQ(parsed, k);
  }
  IntersectKernel out = IntersectKernel::kAuto;
  EXPECT_FALSE(ParseKernel("bogus", &out));
  EXPECT_FALSE(ParseKernel("", &out));
  EXPECT_FALSE(ParseKernel("AVX2", &out));  // names are lowercase
  EXPECT_EQ(out, IntersectKernel::kAuto);   // untouched on failure
}

TEST(IntersectSimdTest, ResolveNeverReturnsAutoOrUnsupported) {
  for (IntersectKernel k : kAllKernels) {
    const IntersectKernel resolved = ResolveKernel(k);
    EXPECT_NE(resolved, IntersectKernel::kAuto) << KernelName(k);
    EXPECT_TRUE(KernelIsaSupported(resolved)) << KernelName(k);
  }
  // kAuto resolves to something runnable on this machine, and resolution
  // is idempotent.
  const IntersectKernel best = ResolveKernel(IntersectKernel::kAuto);
  EXPECT_EQ(ResolveKernel(best), best);
}

TEST(IntersectSimdTest, DefaultKernelMirrorsSetter) {
  const IntersectKernel saved = DefaultKernel();
  SetDefaultKernel(IntersectKernel::kScalar);
  EXPECT_EQ(DefaultKernel(), IntersectKernel::kScalar);
  EXPECT_EQ(CurrentKernel(), IntersectKernel::kScalar);
  SetDefaultKernel(saved);
}

TEST(IntersectSimdTest, AdversarialShapesMatchHybrid) {
  // Shapes chosen to stress the block loop: disjoint (no matches, blocks
  // always advance on compare-misses), identical (every lane matches),
  // interleaved (matches never align within a block), and straddling
  // (matches sit exactly on the 4/8-entry window boundaries).
  struct Case {
    const char* name;
    std::vector<Neighbor> a, b;
  };
  std::vector<Case> cases;
  cases.push_back({"disjoint", MakeList(33, 0, 2, 1), MakeList(33, 1, 2, 2)});
  cases.push_back({"identical", MakeList(40, 5, 3, 1), MakeList(40, 5, 3, 2)});
  cases.push_back({"interleave", MakeList(64, 0, 3, 1), MakeList(64, 0, 5, 2)});
  {
    // Matches at multiples of 8 only → one hit per AVX2 block, straddling
    // every window edge; list lengths offset so tails differ.
    auto a = MakeList(61, 0, 1, 1);
    auto b = MakeList(9, 0, 8, 2);
    cases.push_back({"straddle", std::move(a), std::move(b)});
  }
  cases.push_back({"short_vs_blocky", MakeList(3, 10, 4, 1),
                   MakeList(24, 0, 2, 2)});
  for (const Case& c : cases) {
    const auto expect = RunHybrid(c.a, c.b);
    for (IntersectKernel k : kAllKernels) {
      EXPECT_EQ(RunDispatch(k, c.a, c.b), expect)
          << c.name << " via " << KernelName(k);
      EXPECT_EQ(RunDispatch(k, c.b, c.a), RunHybrid(c.b, c.a))
          << c.name << " (swapped) via " << KernelName(k);
    }
  }
}

TEST(IntersectSimdTest, RandomDifferentialAgainstHybrid) {
  Rng rng(2012);
  for (int round = 0; round < 200; ++round) {
    const uint32_t universe =
        16 + static_cast<uint32_t>(rng.NextBounded(256));
    const auto a = RandomSortedList(
        static_cast<uint32_t>(rng.NextBounded(universe)), universe, 1, rng);
    const auto b = RandomSortedList(
        static_cast<uint32_t>(rng.NextBounded(universe)), universe, 2, rng);
    const auto expect = RunHybrid(a, b);
    for (IntersectKernel k : kAllKernels) {
      IntersectStats stats;
      EXPECT_EQ(RunDispatch(k, a, b, &stats), expect)
          << "round " << round << " via " << KernelName(k);
      // Count-only twin agrees with the emit variant.
      IntersectStats count_stats;
      EXPECT_EQ(IntersectDispatchCount(ResolveKernel(k), a.data(),
                                       a.data() + a.size(), b.data(),
                                       b.data() + b.size(), count_stats),
                expect.size())
          << "round " << round << " via " << KernelName(k);
    }
  }
}

TEST(IntersectSimdTest, SimdLanesCountedWhenIsaPresent) {
  // On hardware with SSE4.2/AVX2 the block kernels must actually engage on
  // comparable-length lists (this is what triangle.simd_lanes_used reports).
  const auto a = MakeList(64, 0, 2, 1);
  const auto b = MakeList(64, 0, 3, 2);
  for (IntersectKernel k : {IntersectKernel::kSse, IntersectKernel::kAvx2}) {
    if (!KernelIsaSupported(k)) continue;
    IntersectStats stats;
    RunDispatch(k, a, b, &stats);
    EXPECT_GT(stats.simd_lanes, 0u) << KernelName(k);
  }
}

TEST(IntersectSimdTest, SkewedPairsDelegateToGallop) {
  // Over the cutoff ratio the dispatch must take the galloping path no
  // matter the kernel — block compares would walk the long list linearly.
  const auto a = MakeList(1000, 0, 1, 1);
  const auto b = MakeList(10, 0, 100, 2);
  const auto expect = RunHybrid(a, b);
  for (IntersectKernel k : kAllKernels) {
    IntersectStats stats;
    EXPECT_EQ(RunDispatch(k, a, b, &stats), expect) << KernelName(k);
    EXPECT_GT(stats.gallop_probes, 0u) << KernelName(k);
    EXPECT_EQ(stats.simd_lanes, 0u) << KernelName(k);
  }
}

TEST(VertexBitmapTest, SetTestClearAndEdgeOf) {
  VertexBitmap bitmap(200);
  EXPECT_FALSE(bitmap.Test(0));
  EXPECT_FALSE(bitmap.Test(199));
  bitmap.Set(63, 7);   // word-boundary vertices
  bitmap.Set(64, 8);
  bitmap.Set(199, 9);
  EXPECT_TRUE(bitmap.Test(63));
  EXPECT_TRUE(bitmap.Test(64));
  EXPECT_TRUE(bitmap.Test(199));
  EXPECT_FALSE(bitmap.Test(62));
  EXPECT_FALSE(bitmap.Test(65));
  EXPECT_EQ(bitmap.EdgeOf(63), 7u);
  EXPECT_EQ(bitmap.EdgeOf(64), 8u);
  EXPECT_EQ(bitmap.EdgeOf(199), 9u);
  bitmap.Clear(64);
  EXPECT_FALSE(bitmap.Test(64));
  EXPECT_TRUE(bitmap.Test(63));
  EXPECT_TRUE(bitmap.Test(199));
}

}  // namespace
}  // namespace tkc
