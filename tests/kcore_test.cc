#include "tkc/graph/kcore.h"

#include <algorithm>

#include <gtest/gtest.h>
#include "tkc/baselines/naive.h"
#include "tkc/gen/generators.h"
#include "tkc/util/random.h"

namespace tkc {
namespace {

TEST(KCoreTest, EmptyGraph) {
  Graph g;
  KCoreResult r = ComputeKCores(g);
  EXPECT_EQ(r.max_core, 0u);
  EXPECT_TRUE(r.core_of.empty());
}

TEST(KCoreTest, IsolatedVertices) {
  Graph g(5);
  KCoreResult r = ComputeKCores(g);
  for (uint32_t c : r.core_of) EXPECT_EQ(c, 0u);
}

TEST(KCoreTest, CompleteGraph) {
  Graph g = CompleteGraph(6);
  KCoreResult r = ComputeKCores(g);
  EXPECT_EQ(r.max_core, 5u);
  for (uint32_t c : r.core_of) EXPECT_EQ(c, 5u);
}

TEST(KCoreTest, PathGraph) {
  Graph g = PathGraph(10);
  KCoreResult r = ComputeKCores(g);
  EXPECT_EQ(r.max_core, 1u);
}

TEST(KCoreTest, CycleGraph) {
  Graph g = CycleGraph(10);
  KCoreResult r = ComputeKCores(g);
  for (uint32_t c : r.core_of) EXPECT_EQ(c, 2u);
}

TEST(KCoreTest, StarGraph) {
  Graph g = StarGraph(8);
  KCoreResult r = ComputeKCores(g);
  for (uint32_t c : r.core_of) EXPECT_EQ(c, 1u);
}

TEST(KCoreTest, PaperFigure1a) {
  // Figure 1(a): a 5-vertex K-Core with number 2 using minimal edges = C5.
  Graph g = CycleGraph(5);
  KCoreResult r = ComputeKCores(g);
  EXPECT_EQ(r.max_core, 2u);
}

TEST(KCoreTest, CliqueInSparseBackground) {
  Rng rng(3);
  Graph g = GnmRandom(200, 300, rng);
  auto members = PlantRandomClique(g, 10, rng);
  KCoreResult r = ComputeKCores(g);
  for (VertexId v : members) EXPECT_GE(r.core_of[v], 9u);
}

TEST(KCoreTest, PeelOrderIsMonotoneInCore) {
  Rng rng(5);
  Graph g = PowerLawCluster(150, 3, 0.5, rng);
  KCoreResult r = ComputeKCores(g);
  uint32_t prev = 0;
  for (VertexId v : r.peel_order) {
    EXPECT_GE(r.core_of[v], prev);
    prev = r.core_of[v];
  }
  EXPECT_EQ(r.peel_order.size(), g.NumVertices());
}

TEST(KCoreTest, MembersHaveMinDegreeK) {
  Rng rng(9);
  Graph g = ErdosRenyi(80, 0.15, rng);
  KCoreResult r = ComputeKCores(g);
  for (uint32_t k = 1; k <= r.max_core; ++k) {
    auto members = KCoreMembers(r, k);
    std::vector<bool> in(g.NumVertices(), false);
    for (VertexId v : members) in[v] = true;
    for (VertexId v : members) {
      uint32_t deg_in = 0;
      for (const Neighbor& nb : g.Neighbors(v)) deg_in += in[nb.vertex];
      EXPECT_GE(deg_in, k) << "vertex " << v << " at k=" << k;
    }
  }
}

class KCoreMatchesNaive : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KCoreMatchesNaive, OnRandomModels) {
  Rng rng(GetParam());
  Graph er = ErdosRenyi(50, 0.12, rng);
  EXPECT_EQ(ComputeKCores(er).core_of, NaiveKCores(er));
  Graph ba = BarabasiAlbert(60, 2, rng);
  EXPECT_EQ(ComputeKCores(ba).core_of, NaiveKCores(ba));
  Graph pp = PlantedPartition(3, 12, 0.5, 0.05, rng);
  EXPECT_EQ(ComputeKCores(pp).core_of, NaiveKCores(pp));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KCoreMatchesNaive,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace tkc
