#include "tkc/cli/cli.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>
#include "tkc/gen/generators.h"
#include "tkc/io/edge_list.h"
#include "tkc/obs/json.h"
#include "tkc/obs/timeline.h"
#include "tkc/util/random.h"

namespace tkc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

int RunTool(const std::vector<std::string>& args, std::string* out_str,
        std::string* err_str = nullptr) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  if (out_str != nullptr) *out_str = out.str();
  if (err_str != nullptr) *err_str = err.str();
  return code;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_path_ = TempPath("cli_edges.txt");
    Graph g = PaperFigure2Graph();
    ASSERT_TRUE(WriteEdgeListFile(g, edges_path_));
  }
  std::string edges_path_;
};

TEST_F(CliTest, NoArgsPrintsUsage) {
  std::string out, err;
  EXPECT_EQ(RunTool({}, &out, &err), 2);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommand) {
  std::string out, err;
  EXPECT_EQ(RunTool({"frobnicate"}, &out, &err), 2);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST_F(CliTest, DecomposeFigure2) {
  std::string out;
  ASSERT_EQ(RunTool({"decompose", edges_path_}, &out), 0);
  // AB = (0,1) has kappa 1; DE = (3,4) has kappa 2.
  EXPECT_NE(out.find("0 1 1 3"), std::string::npos);
  EXPECT_NE(out.find("3 4 2 4"), std::string::npos);
  EXPECT_NE(out.find("max_kappa=2"), std::string::npos);
}

TEST_F(CliTest, DecomposeStoreModeAgrees) {
  std::string a, b;
  ASSERT_EQ(RunTool({"decompose", edges_path_, "--mode=store"}, &a), 0);
  ASSERT_EQ(RunTool({"decompose", edges_path_, "--mode=recompute"}, &b), 0);
  // Strip the timing line before comparing.
  a = a.substr(0, a.rfind("# edges"));
  b = b.substr(0, b.rfind("# edges"));
  EXPECT_EQ(a, b);
}

TEST_F(CliTest, DecomposeKernelAndRelabelAgreeWithDefaults) {
  // A bigger graph than Figure 2 so every kernel (including the hub
  // bitmap) does real work; all kernel/relabel combinations must emit
  // byte-identical κ output.
  std::string big_path = TempPath("cli_kernel_edges.txt");
  Rng rng(2012);
  Graph g = PowerLawCluster(200, 4, 0.5, rng);
  ASSERT_TRUE(WriteEdgeListFile(g, big_path));
  std::string base;
  ASSERT_EQ(RunTool({"decompose", big_path}, &base), 0);
  base = base.substr(0, base.rfind("# edges"));
  for (const char* kernel :
       {"--kernel=scalar", "--kernel=sse", "--kernel=avx2", "--kernel=bitmap",
        "--kernel=auto"}) {
    std::string out;
    ASSERT_EQ(RunTool({"decompose", big_path, kernel}, &out), 0) << kernel;
    out = out.substr(0, out.rfind("# edges"));
    EXPECT_EQ(out, base) << kernel;
  }
  std::string relabeled;
  ASSERT_EQ(
      RunTool({"decompose", big_path, "--relabel=degree"}, &relabeled), 0);
  relabeled = relabeled.substr(0, relabeled.rfind("# edges"));
  EXPECT_EQ(relabeled, base);
}

TEST_F(CliTest, UnknownKernelRejected) {
  std::string out, err;
  EXPECT_EQ(RunTool({"decompose", edges_path_, "--kernel=bogus"}, &out, &err),
            2);
  EXPECT_NE(err.find("unknown --kernel"), std::string::npos);
}

TEST_F(CliTest, UnknownRelabelRejected) {
  std::string out, err;
  EXPECT_EQ(RunTool({"decompose", edges_path_, "--relabel=bogus"}, &out, &err),
            2);
}

TEST_F(CliTest, DecomposeMetricsOut) {
  std::string metrics_path = TempPath("cli_metrics.json");
  std::string out;
  ASSERT_EQ(RunTool({"decompose", edges_path_,
                 "--metrics-out=" + metrics_path},
                &out),
            0);
  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = obs::JsonValue::Parse(buf.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Find("schema")->Str(), "tkc.metrics.v1");
  EXPECT_EQ(doc->Find("command")->Str(), "decompose");
  EXPECT_EQ(doc->Find("exit_code")->Number(), 0.0);

  // Triangle counters from the decomposition of Figure 2 (5 triangles).
  const obs::JsonValue* counters = doc->FindPath("metrics.counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("triangle.triangles_found")->Number(), 5.0);
  EXPECT_GT(counters->Find("core.peel.edges_peeled")->Number(), 0.0);
  EXPECT_NE(counters->Find("core.peel.level.1"), nullptr);
  EXPECT_NE(counters->Find("core.peel.level.2"), nullptr);

  // The phase tree must contain decompose -> core.decompose with the
  // support_count and peel phases.
  const obs::JsonValue* trace = doc->Find("trace");
  ASSERT_TRUE(trace != nullptr && trace->IsArray());
  const obs::JsonValue* core = nullptr;
  for (const obs::JsonValue& top : trace->Items()) {
    for (const obs::JsonValue& child : top.Find("children")->Items()) {
      if (child.Find("name")->Str() == "core.decompose") core = &child;
    }
  }
  ASSERT_NE(core, nullptr);
  std::vector<std::string> phases;
  for (const obs::JsonValue& child : core->Find("children")->Items()) {
    phases.push_back(child.Find("name")->Str());
  }
  EXPECT_NE(std::find(phases.begin(), phases.end(), "support_count"),
            phases.end());
  EXPECT_NE(std::find(phases.begin(), phases.end(), "peel"), phases.end());
}

TEST_F(CliTest, LogLevelFlag) {
  std::string out, err;
  ASSERT_EQ(RunTool({"decompose", edges_path_, "--log-level=info"}, &out,
                &err),
            0);
  EXPECT_NE(err.find("level=info event=graph.loaded"), std::string::npos);

  err.clear();
  ASSERT_EQ(RunTool({"decompose", edges_path_, "--log-level=error"}, &out,
                &err),
            0);
  EXPECT_EQ(err.find("graph.loaded"), std::string::npos);

  EXPECT_EQ(RunTool({"decompose", edges_path_, "--log-level=loud"}, &out,
                &err),
            2);
}

TEST_F(CliTest, UnknownFlagRejected) {
  std::string out, err;
  EXPECT_EQ(RunTool({"decompose", edges_path_, "--bogus=1"}, &out, &err), 2);
  EXPECT_NE(err.find("unknown flag '--bogus'"), std::string::npos);
  EXPECT_NE(err.find("usage:"), std::string::npos);
  // Global flags stay accepted everywhere.
  EXPECT_EQ(RunTool({"kcore", edges_path_, "--log-level=error"}, &out, &err),
            0);
}

TEST_F(CliTest, MissingFileFails) {
  std::string out, err;
  EXPECT_EQ(RunTool({"decompose", "/no/such/file"}, &out, &err), 2);
  EXPECT_NE(err.find("cannot read"), std::string::npos);
}

TEST_F(CliTest, KCore) {
  std::string out;
  ASSERT_EQ(RunTool({"kcore", edges_path_}, &out), 0);
  EXPECT_NE(out.find("max_core=3"), std::string::npos);
}

TEST_F(CliTest, Stats) {
  std::string out;
  ASSERT_EQ(RunTool({"stats", edges_path_}, &out), 0);
  EXPECT_NE(out.find("vertices:               5"), std::string::npos);
  EXPECT_NE(out.find("triangles:              5"), std::string::npos);
}

TEST_F(CliTest, PlotWithSvg) {
  std::string svg_path = TempPath("cli_plot.svg");
  std::string out;
  ASSERT_EQ(RunTool({"plot", edges_path_, "--svg=" + svg_path, "--height=6"},
                &out),
            0);
  EXPECT_NE(out.find('#'), std::string::npos);
  std::ifstream svg(svg_path);
  EXPECT_TRUE(svg.good());
}

TEST_F(CliTest, Hierarchy) {
  std::string out;
  ASSERT_EQ(RunTool({"hierarchy", edges_path_}, &out), 0);
  EXPECT_NE(out.find("k=1"), std::string::npos);
  EXPECT_NE(out.find("k=2"), std::string::npos);
}

TEST_F(CliTest, UpdateAppliesEventsAndVerifies) {
  std::string events_path = TempPath("cli_events.txt");
  {
    std::ofstream ev(events_path);
    ev << "# add chord, drop an old edge\n+ 0 3\n- 0 1\n";
  }
  std::string out;
  ASSERT_EQ(RunTool({"update", edges_path_, events_path}, &out), 0);
  EXPECT_NE(out.find("events=2"), std::string::npos);
  EXPECT_NE(out.find("verified=yes"), std::string::npos);
}

TEST_F(CliTest, UpdateSkipsMalformedEventRowsWithWarning) {
  // Hardened io/event_list semantics: junk rows are skipped and counted,
  // not fatal — the valid rows still apply.
  std::string events_path = TempPath("cli_bad_events.txt");
  {
    std::ofstream ev(events_path);
    ev << "* 0 1\n+ 2 2\n+ 0 3\n";
  }
  std::string out, err;
  EXPECT_EQ(RunTool({"update", edges_path_, events_path, "--log-level=warn"},
                &out, &err),
            0);
  EXPECT_NE(out.find("events=1"), std::string::npos);
  EXPECT_NE(out.find("verified=yes"), std::string::npos);
  EXPECT_NE(err.find("events.lines_skipped"), std::string::npos);
}

TEST_F(CliTest, UpdateMissingEventsFileFails) {
  std::string out, err;
  EXPECT_EQ(RunTool({"update", edges_path_, "/no/such/events"}, &out, &err),
            2);
  EXPECT_NE(err.find("cannot read events"), std::string::npos);
}

TEST_F(CliTest, UpdateWritesUpdateStatsIntoMetricsArtifact) {
  std::string events_path = TempPath("cli_update_stats_events.txt");
  {
    std::ofstream ev(events_path);
    ev << "+ 0 3\n- 0 1\n";
  }
  std::string metrics_path = TempPath("cli_update_metrics.json");
  std::string out;
  ASSERT_EQ(RunTool({"update", edges_path_, events_path,
                 "--metrics-out=" + metrics_path},
                &out),
            0);
  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = obs::JsonValue::Parse(buf.str());
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* stats = doc->Find("update_stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_NE(stats->Find("candidate_edges"), nullptr);
  EXPECT_NE(stats->Find("promoted_edges"), nullptr);
  EXPECT_NE(stats->Find("demoted_edges"), nullptr);
  EXPECT_NE(stats->Find("triangles_scanned"), nullptr);
}

TEST_F(CliTest, ReplayStreamsEventsThroughEngine) {
  std::string events_path = TempPath("cli_replay_events.txt");
  {
    std::ofstream ev(events_path);
    ev << "# mixed log with junk rows\n"
          "+ 0 3\n"
          "junk row\n"
          "+ 1 1\n"  // self-loop: skipped, counted
          "+ 1 3\n"
          "- 0 1\n"
          "+ 0 1\n"
          "+ 2 4\n";
  }
  std::string json_path = TempPath("cli_replay.json");
  std::string metrics_path = TempPath("cli_replay_metrics.json");
  std::string out;
  ASSERT_EQ(RunTool({"replay", edges_path_, "--events=" + events_path,
                 "--batch=2", "--query-every=1", "--compact-edits=2",
                 "--verify", "--json-out=" + json_path,
                 "--metrics-out=" + metrics_path},
                &out),
            0);
  EXPECT_NE(out.find("batch 1:"), std::string::npos);
  EXPECT_NE(out.find("query after batch"), std::string::npos);
  EXPECT_NE(out.find("verified=yes"), std::string::npos);
  EXPECT_NE(out.find("skipped=2"), std::string::npos);

  // tkc.replay.v1 artifact.
  std::ifstream rin(json_path);
  ASSERT_TRUE(rin.good());
  std::stringstream rbuf;
  rbuf << rin.rdbuf();
  auto rdoc = obs::JsonValue::Parse(rbuf.str());
  ASSERT_TRUE(rdoc.has_value());
  EXPECT_EQ(rdoc->Find("schema")->Str(), "tkc.replay.v1");
  EXPECT_EQ(rdoc->Find("events")->Number(), 5.0);
  EXPECT_EQ(rdoc->Find("events_skipped")->Number(), 2.0);
  EXPECT_EQ(rdoc->Find("verified")->Str(), "yes");
  EXPECT_NE(rdoc->Find("update_stats"), nullptr);
  ASSERT_TRUE(rdoc->Find("batch_log")->IsArray());
  EXPECT_EQ(rdoc->Find("batch_log")->Items().size(), 3u);  // ceil(5/2)

  // Metrics artifact: engine counters, the zero-copy pin, the skip
  // counters from the hardened parser, and the update_stats block.
  std::ifstream min(metrics_path);
  ASSERT_TRUE(min.good());
  std::stringstream mbuf;
  mbuf << min.rdbuf();
  auto mdoc = obs::JsonValue::Parse(mbuf.str());
  ASSERT_TRUE(mdoc.has_value());
  const obs::JsonValue* counters = mdoc->FindPath("metrics.counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("engine.batches")->Number(), 3.0);
  EXPECT_EQ(counters->Find("engine.events")->Number(), 5.0);
  EXPECT_EQ(counters->Find("engine.snapshot_copies")->Number(), 0.0);
  EXPECT_EQ(counters->Find("io.events_skipped")->Number(), 2.0);
  EXPECT_EQ(counters->Find("io.events_self_loops")->Number(), 1.0);
  EXPECT_NE(counters->Find("dyn.batch.count"), nullptr);
  EXPECT_NE(mdoc->Find("update_stats"), nullptr);
}

TEST_F(CliTest, ReplayRequiresEventsFlag) {
  std::string out, err;
  EXPECT_EQ(RunTool({"replay", edges_path_}, &out, &err), 2);
  EXPECT_NE(err.find("requires --events"), std::string::npos);
}

TEST_F(CliTest, ReplayRejectsBadFlags) {
  std::string out, err;
  EXPECT_EQ(RunTool({"replay", edges_path_, "--events=/no/such/file"}, &out,
                &err),
            2);
  EXPECT_EQ(RunTool({"replay", edges_path_, "--events=x", "--batch=0"},
                &out, &err),
            2);
  EXPECT_EQ(RunTool({"replay", edges_path_, "--events=x", "--bogus=1"},
                &out, &err),
            2);
}

TEST_F(CliTest, UsageListsReplayAndGlobalFlags) {
  std::string out, err;
  EXPECT_EQ(RunTool({}, &out, &err), 2);
  EXPECT_NE(err.find("replay"), std::string::npos);
  EXPECT_NE(err.find("--trace-out=FILE"), std::string::npos);
  EXPECT_NE(err.find("--threads=N"), std::string::npos);
}

TEST_F(CliTest, VerifyCleanGraphPasses) {
  std::string out;
  ASSERT_EQ(RunTool({"verify", edges_path_}, &out), 0);
  EXPECT_NE(out.find("PASS  kappa.soundness"), std::string::npos);
  EXPECT_NE(out.find("PASS  kappa.maximality"), std::string::npos);
  EXPECT_NE(out.find("passed=yes"), std::string::npos);
  EXPECT_EQ(out.find("FAIL"), std::string::npos);
}

TEST_F(CliTest, VerifyWritesVerifyV1Artifact) {
  std::string json_path = TempPath("cli_verify.json");
  std::string out;
  ASSERT_EQ(RunTool({"verify", edges_path_, "--json-out=" + json_path,
                 "--mode=store"},
                &out),
            0);
  std::ifstream in(json_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"schema\": \"tkc.verify.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"passed\": true"), std::string::npos);
  EXPECT_NE(json.find("kappa.maximality"), std::string::npos);
}

TEST_F(CliTest, VerifyWithEventsRunsReplay) {
  std::string events_path = TempPath("cli_verify_events.txt");
  {
    std::ofstream ev(events_path);
    ev << "+ 0 3\n- 0 1\n+ 0 1\n";
  }
  std::string out;
  ASSERT_EQ(RunTool({"verify", edges_path_, "--events=" + events_path,
                 "--check-every=2"},
                &out),
            0);
  EXPECT_NE(out.find("PASS  dynamic.replay"), std::string::npos);
  EXPECT_NE(out.find("passed=yes"), std::string::npos);
}

TEST_F(CliTest, VerifyRejectsBadFlags) {
  std::string out, err;
  EXPECT_EQ(RunTool({"verify", edges_path_, "--mode=never"}, &out, &err), 2);
  EXPECT_EQ(RunTool({"verify", edges_path_, "--check-every=0"}, &out, &err),
            2);
  EXPECT_EQ(RunTool({"verify", edges_path_, "--events=/no/such/file"}, &out,
                &err),
            2);
}

TEST_F(CliTest, TemplatesNewForm) {
  // old: 5 isolated vertices; new: the K5 over them.
  std::string old_path = TempPath("cli_old.txt");
  std::string new_path = TempPath("cli_new.txt");
  {
    Graph old_g(5);
    old_g.AddEdge(5, 6);  // keep vertices 0..4 present but idle
    ASSERT_TRUE(WriteEdgeListFile(old_g, old_path));
    Graph new_g = old_g;
    PlantClique(new_g, {0, 1, 2, 3, 4});
    ASSERT_TRUE(WriteEdgeListFile(new_g, new_path));
  }
  std::string out;
  ASSERT_EQ(RunTool({"templates", old_path, new_path, "--pattern=newform"},
                &out),
            0);
  EXPECT_NE(out.find("pattern=NewForm"), std::string::npos);
  EXPECT_NE(out.find("size=5"), std::string::npos);
}

TEST_F(CliTest, TemplatesUnknownPattern) {
  std::string out, err;
  EXPECT_EQ(
      RunTool({"templates", edges_path_, edges_path_, "--pattern=zigzag"}, &out,
          &err),
      2);
}

TEST_F(CliTest, GenerateRoundTrip) {
  std::string out_path = TempPath("cli_gen.txt");
  std::string out;
  ASSERT_EQ(RunTool({"generate", "plc", "--n=200", "--m=3", "--seed=5",
                 "--out=" + out_path},
                &out),
            0);
  auto g = ReadEdgeListFile(out_path);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumVertices(), 200u);
  EXPECT_GT(g->NumEdges(), 500u);
}

TEST_F(CliTest, GenerateRequiresOut) {
  std::string out, err;
  EXPECT_EQ(RunTool({"generate", "er", "--n=50"}, &out, &err), 2);
  EXPECT_NE(err.find("--out"), std::string::npos);
}

TEST_F(CliTest, GenerateAllModels) {
  for (const char* model :
       {"er", "gnm", "ba", "plc", "ws", "rmat", "geometric", "collab"}) {
    std::string out_path = TempPath(std::string("cli_gen_") + model + ".txt");
    std::string out;
    ASSERT_EQ(RunTool({"generate", model, "--n=128", "--seed=3",
                   "--out=" + out_path},
                  &out),
              0)
        << model;
    auto g = ReadEdgeListFile(out_path);
    ASSERT_TRUE(g.has_value()) << model;
    EXPECT_GT(g->NumEdges(), 0u) << model;
  }
}

TEST_F(CliTest, TraceOutArtifact) {
  std::string trace_path = TempPath("cli_trace.json");
  std::string out;
  ASSERT_EQ(RunTool({"decompose", edges_path_, "--threads=4",
                 "--trace-out=" + trace_path},
                &out),
            0);
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = obs::JsonValue::Parse(buf.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Find("schema")->Str(), "tkc.trace.v1");
  EXPECT_EQ(doc->Find("command")->Str(), "decompose");
  EXPECT_EQ(doc->Find("exit_code")->Number(), 0.0);

  // Perf block: explicit either way — available with a counter list, or a
  // recorded reason (CI runs without perf privileges must stay green).
  const obs::JsonValue* perf = doc->Find("perf");
  ASSERT_NE(perf, nullptr);
  ASSERT_NE(perf->Find("available"), nullptr);
  if (perf->Find("available")->Bool()) {
    EXPECT_NE(perf->Find("counters"), nullptr);
  } else {
    EXPECT_FALSE(perf->Find("reason")->Str().empty());
  }
  ASSERT_NE(doc->FindPath("mem.alloc_tracking"), nullptr);

  // Track summary: main is tid 0 and the pool contributes at least two
  // worker tracks at --threads=4 (the support kernel fans out even on the
  // Figure 2 graph).
  const obs::JsonValue* tracks = doc->Find("tracks");
  ASSERT_TRUE(tracks != nullptr && tracks->IsArray());
  int workers_seen = 0;
  ASSERT_FALSE(tracks->Items().empty());
  EXPECT_EQ(tracks->Items()[0].Find("name")->Str(), "main");
  for (const obs::JsonValue& t : tracks->Items()) {
    if (t.Find("name")->Str().rfind("pool.worker-", 0) == 0) {
      ++workers_seen;
      EXPECT_GT(t.Find("events")->Number(), 0.0);
    }
  }
  EXPECT_GE(workers_seen, 2);

  // Chrome-trace body: per-round peel slices with level/round args and a
  // thread_name metadata record per track.
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->IsArray());
  bool saw_round = false;
  size_t metadata = 0;
  for (const obs::JsonValue& e : events->Items()) {
    if (e.Find("ph")->Str() == "M") ++metadata;
    if (e.Find("name")->Str() == "peel.round") {
      saw_round = true;
      EXPECT_NE(e.FindPath("args.level"), nullptr);
      EXPECT_NE(e.FindPath("args.round"), nullptr);
      EXPECT_NE(e.FindPath("args.frontier"), nullptr);
    }
  }
  EXPECT_TRUE(saw_round);
  EXPECT_EQ(metadata, tracks->Items().size());

  // Without --trace-out the recorder stays off and no stale state leaks
  // into the next invocation.
  ASSERT_EQ(RunTool({"decompose", edges_path_}, &out), 0);
  EXPECT_EQ(obs::TimelineRecorder::Global().NumEvents(), 0u);
}

TEST_F(CliTest, TraceOutUnwritablePathFails) {
  std::string out, err;
  EXPECT_EQ(RunTool({"stats", edges_path_,
                 "--trace-out=/no/such/dir/trace.json"},
                &out, &err),
            2);
  EXPECT_NE(err.find("cannot write trace"), std::string::npos);
}

TEST_F(CliTest, LogTimestampsFlag) {
  std::string out, err;
  ASSERT_EQ(RunTool({"decompose", edges_path_, "--log-level=info",
                 "--log-timestamps"},
                &out, &err),
            0);
  EXPECT_EQ(err.rfind("ts=", 0), 0u);
  EXPECT_NE(err.find(" level=info event=graph.loaded"), std::string::npos);

  // Default stays byte-stable: no prefix without the flag, and the setting
  // does not leak into the next invocation.
  err.clear();
  ASSERT_EQ(RunTool({"decompose", edges_path_, "--log-level=info"}, &out,
                &err),
            0);
  EXPECT_EQ(err.rfind("level=info", 0), 0u);
}

// Output rows with the timing footer stripped — '#' lines carry seconds=
// values that legitimately differ between runs.
std::string DataRows(const std::string& out) {
  std::istringstream in(out);
  std::string line, rows;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '#') continue;
    rows += line;
    rows += '\n';
  }
  return rows;
}

TEST_F(CliTest, IngestThreadsFlagKeepsOutputIdentical) {
  std::string serial, parallel;
  ASSERT_EQ(RunTool({"decompose", edges_path_, "--ingest-threads=1"},
                &serial),
            0);
  ASSERT_EQ(RunTool({"decompose", edges_path_, "--ingest-threads=8"},
                &parallel),
            0);
  EXPECT_EQ(DataRows(serial), DataRows(parallel));

  std::string out, err;
  EXPECT_EQ(RunTool({"decompose", edges_path_, "--ingest-threads=-1"}, &out,
                &err),
            2);
  EXPECT_NE(err.find("--ingest-threads"), std::string::npos);
}

TEST_F(CliTest, CacheBuildLoadAndServe) {
  const std::string cache = TempPath("cli_cache.tkcg");
  std::string out, err;
  ASSERT_EQ(RunTool({"cache", "build", edges_path_, "--out=" + cache}, &out),
            0);
  EXPECT_NE(out.find("wrote " + cache), std::string::npos);
  ASSERT_EQ(RunTool({"cache", "load", cache}, &out), 0);
  EXPECT_NE(out.find("version=1"), std::string::npos);
  EXPECT_NE(out.find("relabeled=no"), std::string::npos);

  // Rows served from the cache are byte-identical to text ingest.
  std::string text_rows, cache_rows;
  ASSERT_EQ(RunTool({"decompose", edges_path_}, &text_rows), 0);
  ASSERT_EQ(RunTool({"decompose", edges_path_, "--graph-cache=" + cache},
                &cache_rows, &err),
            0);
  EXPECT_EQ(DataRows(text_rows), DataRows(cache_rows));

  // Missing verb / unknown verb are usage errors.
  EXPECT_EQ(RunTool({"cache", "frobnicate", cache}, &out, &err), 2);
  EXPECT_NE(err.find("unknown cache subcommand"), std::string::npos);
  EXPECT_EQ(RunTool({"cache", "build", edges_path_}, &out, &err), 2);
  EXPECT_NE(err.find("--out"), std::string::npos);
}

TEST_F(CliTest, GraphCacheMissBuildsThenHits) {
  const std::string cache = TempPath("cli_cache_miss.tkcg");
  std::remove(cache.c_str());
  std::string first, second, err;
  ASSERT_EQ(RunTool({"decompose", edges_path_, "--graph-cache=" + cache,
                 "--log-level=info"},
                &first, &err),
            0);
  EXPECT_NE(err.find("cache.miss"), std::string::npos);
  EXPECT_NE(err.find("cache.written"), std::string::npos);
  ASSERT_EQ(RunTool({"decompose", edges_path_, "--graph-cache=" + cache,
                 "--log-level=info"},
                &second, &err),
            0);
  EXPECT_NE(err.find("cache.loaded"), std::string::npos);
  EXPECT_EQ(DataRows(first), DataRows(second));
}

TEST_F(CliTest, CorruptedGraphCacheIsHardErrorWithNamedReason) {
  const std::string cache = TempPath("cli_cache_corrupt.tkcg");
  std::string out, err;
  ASSERT_EQ(RunTool({"cache", "build", edges_path_, "--out=" + cache}, &out),
            0);
  {
    std::fstream file(cache, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(80);
    file.put('\x7f');
  }
  EXPECT_EQ(RunTool({"decompose", edges_path_, "--graph-cache=" + cache},
                &out, &err),
            2);
  EXPECT_NE(err.find("rejected: checksum_mismatch"), std::string::npos);
  EXPECT_EQ(RunTool({"cache", "load", cache}, &out, &err), 2);
  EXPECT_NE(err.find("checksum_mismatch"), std::string::npos);
}

TEST_F(CliTest, RelabeledCacheRejectedByVertexKeyedCommands) {
  const std::string cache = TempPath("cli_cache_degree.tkcg");
  std::string out, err;
  ASSERT_EQ(RunTool({"cache", "build", edges_path_, "--out=" + cache,
                 "--relabel=degree"},
                &out),
            0);
  EXPECT_EQ(RunTool({"kcore", edges_path_, "--graph-cache=" + cache}, &out,
                &err),
            2);
  EXPECT_NE(err.find("degree-relabeled"), std::string::npos);
  // decompose translates ids back, so the same cache serves it fine.
  std::string text_rows, cache_rows;
  ASSERT_EQ(RunTool({"decompose", edges_path_}, &text_rows), 0);
  ASSERT_EQ(RunTool({"decompose", edges_path_, "--graph-cache=" + cache},
                &cache_rows),
            0);
  EXPECT_EQ(DataRows(text_rows), DataRows(cache_rows));
}

TEST_F(CliTest, ReplayWithGraphCacheReportsCacheStats) {
  const std::string cache = TempPath("cli_cache_replay.tkcg");
  const std::string events = TempPath("cli_cache_replay_events.txt");
  {
    std::ofstream file(events);
    file << "+ 0 5\n+ 1 5\n- 0 1\n";
  }
  std::string out, err;
  ASSERT_EQ(RunTool({"cache", "build", edges_path_, "--out=" + cache}, &out),
            0);
  const std::string json = TempPath("cli_cache_replay.json");
  ASSERT_EQ(RunTool({"replay", edges_path_, "--events=" + events,
                 "--graph-cache=" + cache, "--verify",
                 "--json-out=" + json},
                &out, &err),
            0);
  EXPECT_NE(out.find("cache_hits=1"), std::string::npos);
  EXPECT_NE(out.find("verified=yes"), std::string::npos);
  std::ifstream file(json);
  std::stringstream buf;
  buf << file.rdbuf();
  auto doc = obs::JsonValue::Parse(buf.str());
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* cache_json = doc->Find("cache");
  ASSERT_NE(cache_json, nullptr);
  EXPECT_EQ(cache_json->Find("hits")->Number(), 1.0);
  EXPECT_EQ(cache_json->Find("misses")->Number(), 0.0);
  EXPECT_EQ(cache_json->Find("checksum_failures")->Number(), 0.0);
}

TEST_F(CliTest, MetricsArtifactCarriesCacheCounters) {
  const std::string metrics = TempPath("cli_cache_metrics.json");
  std::string out;
  ASSERT_EQ(RunTool({"stats", edges_path_, "--metrics-out=" + metrics},
                &out),
            0);
  std::ifstream file(metrics);
  std::stringstream buf;
  buf << file.rdbuf();
  auto doc = obs::JsonValue::Parse(buf.str());
  ASSERT_TRUE(doc.has_value());
  // Pre-created at startup: present (and zero) even with no cache in play.
  const obs::JsonValue* counters = doc->FindPath("metrics.counters");
  ASSERT_NE(counters, nullptr);
  for (const char* name :
       {"cache.hits", "cache.misses", "cache.checksum_failures"}) {
    const obs::JsonValue* counter = counters->Find(name);
    ASSERT_NE(counter, nullptr) << name;
    EXPECT_EQ(counter->Number(), 0.0) << name;
  }
}

}  // namespace
}  // namespace tkc
