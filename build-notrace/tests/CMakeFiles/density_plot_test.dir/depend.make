# Empty dependencies file for density_plot_test.
# This may be replaced when dependencies are built.
