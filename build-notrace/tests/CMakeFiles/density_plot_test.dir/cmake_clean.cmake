file(REMOVE_RECURSE
  "CMakeFiles/density_plot_test.dir/density_plot_test.cc.o"
  "CMakeFiles/density_plot_test.dir/density_plot_test.cc.o.d"
  "density_plot_test"
  "density_plot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_plot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
