# Empty compiler generated dependencies file for core_extraction_test.
# This may be replaced when dependencies are built.
