file(REMOVE_RECURSE
  "CMakeFiles/core_extraction_test.dir/core_extraction_test.cc.o"
  "CMakeFiles/core_extraction_test.dir/core_extraction_test.cc.o.d"
  "core_extraction_test"
  "core_extraction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_extraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
