# Empty compiler generated dependencies file for graph_draw_test.
# This may be replaced when dependencies are built.
