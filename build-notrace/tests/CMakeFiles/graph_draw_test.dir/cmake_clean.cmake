file(REMOVE_RECURSE
  "CMakeFiles/graph_draw_test.dir/graph_draw_test.cc.o"
  "CMakeFiles/graph_draw_test.dir/graph_draw_test.cc.o.d"
  "graph_draw_test"
  "graph_draw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_draw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
