# Empty dependencies file for known_families_test.
# This may be replaced when dependencies are built.
