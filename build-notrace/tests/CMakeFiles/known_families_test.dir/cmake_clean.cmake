file(REMOVE_RECURSE
  "CMakeFiles/known_families_test.dir/known_families_test.cc.o"
  "CMakeFiles/known_families_test.dir/known_families_test.cc.o.d"
  "known_families_test"
  "known_families_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/known_families_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
