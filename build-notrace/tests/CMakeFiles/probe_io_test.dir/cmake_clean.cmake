file(REMOVE_RECURSE
  "CMakeFiles/probe_io_test.dir/probe_io_test.cc.o"
  "CMakeFiles/probe_io_test.dir/probe_io_test.cc.o.d"
  "probe_io_test"
  "probe_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
