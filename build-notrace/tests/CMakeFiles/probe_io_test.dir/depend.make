# Empty dependencies file for probe_io_test.
# This may be replaced when dependencies are built.
