file(REMOVE_RECURSE
  "CMakeFiles/dn_graph_test.dir/dn_graph_test.cc.o"
  "CMakeFiles/dn_graph_test.dir/dn_graph_test.cc.o.d"
  "dn_graph_test"
  "dn_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dn_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
