# Empty dependencies file for dn_graph_test.
# This may be replaced when dependencies are built.
