# Empty compiler generated dependencies file for ordered_core_test.
# This may be replaced when dependencies are built.
