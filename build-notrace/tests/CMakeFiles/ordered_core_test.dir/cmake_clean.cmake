file(REMOVE_RECURSE
  "CMakeFiles/ordered_core_test.dir/ordered_core_test.cc.o"
  "CMakeFiles/ordered_core_test.dir/ordered_core_test.cc.o.d"
  "ordered_core_test"
  "ordered_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
