file(REMOVE_RECURSE
  "CMakeFiles/dynamic_gen_test.dir/dynamic_gen_test.cc.o"
  "CMakeFiles/dynamic_gen_test.dir/dynamic_gen_test.cc.o.d"
  "dynamic_gen_test"
  "dynamic_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
