file(REMOVE_RECURSE
  "CMakeFiles/triangle_core_test.dir/triangle_core_test.cc.o"
  "CMakeFiles/triangle_core_test.dir/triangle_core_test.cc.o.d"
  "triangle_core_test"
  "triangle_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangle_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
