# Empty dependencies file for triangle_core_test.
# This may be replaced when dependencies are built.
