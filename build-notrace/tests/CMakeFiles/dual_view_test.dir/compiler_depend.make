# Empty compiler generated dependencies file for dual_view_test.
# This may be replaced when dependencies are built.
