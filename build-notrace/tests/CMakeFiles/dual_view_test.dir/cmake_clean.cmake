file(REMOVE_RECURSE
  "CMakeFiles/dual_view_test.dir/dual_view_test.cc.o"
  "CMakeFiles/dual_view_test.dir/dual_view_test.cc.o.d"
  "dual_view_test"
  "dual_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
