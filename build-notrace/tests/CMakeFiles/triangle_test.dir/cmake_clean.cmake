file(REMOVE_RECURSE
  "CMakeFiles/triangle_test.dir/triangle_test.cc.o"
  "CMakeFiles/triangle_test.dir/triangle_test.cc.o.d"
  "triangle_test"
  "triangle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
