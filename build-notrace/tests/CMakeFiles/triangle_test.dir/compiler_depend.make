# Empty compiler generated dependencies file for triangle_test.
# This may be replaced when dependencies are built.
