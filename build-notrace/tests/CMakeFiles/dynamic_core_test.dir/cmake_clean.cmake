file(REMOVE_RECURSE
  "CMakeFiles/dynamic_core_test.dir/dynamic_core_test.cc.o"
  "CMakeFiles/dynamic_core_test.dir/dynamic_core_test.cc.o.d"
  "dynamic_core_test"
  "dynamic_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
