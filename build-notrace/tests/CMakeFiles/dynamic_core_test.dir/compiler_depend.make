# Empty compiler generated dependencies file for dynamic_core_test.
# This may be replaced when dependencies are built.
