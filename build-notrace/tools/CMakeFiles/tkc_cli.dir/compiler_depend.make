# Empty compiler generated dependencies file for tkc_cli.
# This may be replaced when dependencies are built.
