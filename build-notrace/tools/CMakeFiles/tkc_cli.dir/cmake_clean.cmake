file(REMOVE_RECURSE
  "CMakeFiles/tkc_cli.dir/tkc_main.cc.o"
  "CMakeFiles/tkc_cli.dir/tkc_main.cc.o.d"
  "tkc"
  "tkc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tkc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
