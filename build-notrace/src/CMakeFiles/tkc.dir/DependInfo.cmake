
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tkc/baselines/csv.cc" "src/CMakeFiles/tkc.dir/tkc/baselines/csv.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/baselines/csv.cc.o.d"
  "/root/repo/src/tkc/baselines/dn_graph.cc" "src/CMakeFiles/tkc.dir/tkc/baselines/dn_graph.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/baselines/dn_graph.cc.o.d"
  "/root/repo/src/tkc/baselines/naive.cc" "src/CMakeFiles/tkc.dir/tkc/baselines/naive.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/baselines/naive.cc.o.d"
  "/root/repo/src/tkc/cli/cli.cc" "src/CMakeFiles/tkc.dir/tkc/cli/cli.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/cli/cli.cc.o.d"
  "/root/repo/src/tkc/core/clique_probe.cc" "src/CMakeFiles/tkc.dir/tkc/core/clique_probe.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/core/clique_probe.cc.o.d"
  "/root/repo/src/tkc/core/core_extraction.cc" "src/CMakeFiles/tkc.dir/tkc/core/core_extraction.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/core/core_extraction.cc.o.d"
  "/root/repo/src/tkc/core/dynamic_core.cc" "src/CMakeFiles/tkc.dir/tkc/core/dynamic_core.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/core/dynamic_core.cc.o.d"
  "/root/repo/src/tkc/core/hierarchy.cc" "src/CMakeFiles/tkc.dir/tkc/core/hierarchy.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/core/hierarchy.cc.o.d"
  "/root/repo/src/tkc/core/ordered_core.cc" "src/CMakeFiles/tkc.dir/tkc/core/ordered_core.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/core/ordered_core.cc.o.d"
  "/root/repo/src/tkc/core/triangle_core.cc" "src/CMakeFiles/tkc.dir/tkc/core/triangle_core.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/core/triangle_core.cc.o.d"
  "/root/repo/src/tkc/gen/datasets.cc" "src/CMakeFiles/tkc.dir/tkc/gen/datasets.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/gen/datasets.cc.o.d"
  "/root/repo/src/tkc/gen/dynamic_gen.cc" "src/CMakeFiles/tkc.dir/tkc/gen/dynamic_gen.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/gen/dynamic_gen.cc.o.d"
  "/root/repo/src/tkc/gen/generators.cc" "src/CMakeFiles/tkc.dir/tkc/gen/generators.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/gen/generators.cc.o.d"
  "/root/repo/src/tkc/graph/connectivity.cc" "src/CMakeFiles/tkc.dir/tkc/graph/connectivity.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/graph/connectivity.cc.o.d"
  "/root/repo/src/tkc/graph/csr.cc" "src/CMakeFiles/tkc.dir/tkc/graph/csr.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/graph/csr.cc.o.d"
  "/root/repo/src/tkc/graph/graph.cc" "src/CMakeFiles/tkc.dir/tkc/graph/graph.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/graph/graph.cc.o.d"
  "/root/repo/src/tkc/graph/kcore.cc" "src/CMakeFiles/tkc.dir/tkc/graph/kcore.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/graph/kcore.cc.o.d"
  "/root/repo/src/tkc/graph/stats.cc" "src/CMakeFiles/tkc.dir/tkc/graph/stats.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/graph/stats.cc.o.d"
  "/root/repo/src/tkc/graph/triangle.cc" "src/CMakeFiles/tkc.dir/tkc/graph/triangle.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/graph/triangle.cc.o.d"
  "/root/repo/src/tkc/io/edge_list.cc" "src/CMakeFiles/tkc.dir/tkc/io/edge_list.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/io/edge_list.cc.o.d"
  "/root/repo/src/tkc/io/result_io.cc" "src/CMakeFiles/tkc.dir/tkc/io/result_io.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/io/result_io.cc.o.d"
  "/root/repo/src/tkc/io/snapshots.cc" "src/CMakeFiles/tkc.dir/tkc/io/snapshots.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/io/snapshots.cc.o.d"
  "/root/repo/src/tkc/obs/json.cc" "src/CMakeFiles/tkc.dir/tkc/obs/json.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/obs/json.cc.o.d"
  "/root/repo/src/tkc/obs/log.cc" "src/CMakeFiles/tkc.dir/tkc/obs/log.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/obs/log.cc.o.d"
  "/root/repo/src/tkc/obs/metrics.cc" "src/CMakeFiles/tkc.dir/tkc/obs/metrics.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/obs/metrics.cc.o.d"
  "/root/repo/src/tkc/obs/trace.cc" "src/CMakeFiles/tkc.dir/tkc/obs/trace.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/obs/trace.cc.o.d"
  "/root/repo/src/tkc/patterns/events.cc" "src/CMakeFiles/tkc.dir/tkc/patterns/events.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/patterns/events.cc.o.d"
  "/root/repo/src/tkc/patterns/patterns.cc" "src/CMakeFiles/tkc.dir/tkc/patterns/patterns.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/patterns/patterns.cc.o.d"
  "/root/repo/src/tkc/patterns/template_clique.cc" "src/CMakeFiles/tkc.dir/tkc/patterns/template_clique.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/patterns/template_clique.cc.o.d"
  "/root/repo/src/tkc/util/random.cc" "src/CMakeFiles/tkc.dir/tkc/util/random.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/util/random.cc.o.d"
  "/root/repo/src/tkc/util/timer.cc" "src/CMakeFiles/tkc.dir/tkc/util/timer.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/util/timer.cc.o.d"
  "/root/repo/src/tkc/viz/ascii_chart.cc" "src/CMakeFiles/tkc.dir/tkc/viz/ascii_chart.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/viz/ascii_chart.cc.o.d"
  "/root/repo/src/tkc/viz/density_plot.cc" "src/CMakeFiles/tkc.dir/tkc/viz/density_plot.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/viz/density_plot.cc.o.d"
  "/root/repo/src/tkc/viz/dual_view.cc" "src/CMakeFiles/tkc.dir/tkc/viz/dual_view.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/viz/dual_view.cc.o.d"
  "/root/repo/src/tkc/viz/graph_draw.cc" "src/CMakeFiles/tkc.dir/tkc/viz/graph_draw.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/viz/graph_draw.cc.o.d"
  "/root/repo/src/tkc/viz/svg.cc" "src/CMakeFiles/tkc.dir/tkc/viz/svg.cc.o" "gcc" "src/CMakeFiles/tkc.dir/tkc/viz/svg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
