# Empty compiler generated dependencies file for tkc.
# This may be replaced when dependencies are built.
