file(REMOVE_RECURSE
  "libtkc.a"
)
