# Empty dependencies file for tkc.
# This may be replaced when dependencies are built.
