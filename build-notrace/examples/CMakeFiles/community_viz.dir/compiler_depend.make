# Empty compiler generated dependencies file for community_viz.
# This may be replaced when dependencies are built.
