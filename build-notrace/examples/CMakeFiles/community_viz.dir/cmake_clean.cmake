file(REMOVE_RECURSE
  "CMakeFiles/community_viz.dir/community_viz.cpp.o"
  "CMakeFiles/community_viz.dir/community_viz.cpp.o.d"
  "community_viz"
  "community_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
