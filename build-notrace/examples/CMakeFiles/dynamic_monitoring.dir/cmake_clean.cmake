file(REMOVE_RECURSE
  "CMakeFiles/dynamic_monitoring.dir/dynamic_monitoring.cpp.o"
  "CMakeFiles/dynamic_monitoring.dir/dynamic_monitoring.cpp.o.d"
  "dynamic_monitoring"
  "dynamic_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
