# Empty dependencies file for dynamic_monitoring.
# This may be replaced when dependencies are built.
