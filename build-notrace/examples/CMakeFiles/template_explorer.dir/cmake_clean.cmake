file(REMOVE_RECURSE
  "CMakeFiles/template_explorer.dir/template_explorer.cpp.o"
  "CMakeFiles/template_explorer.dir/template_explorer.cpp.o.d"
  "template_explorer"
  "template_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
