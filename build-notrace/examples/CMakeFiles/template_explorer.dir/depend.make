# Empty dependencies file for template_explorer.
# This may be replaced when dependencies are built.
