# Empty dependencies file for stream_replay.
# This may be replaced when dependencies are built.
