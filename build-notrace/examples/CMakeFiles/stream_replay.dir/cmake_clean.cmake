file(REMOVE_RECURSE
  "CMakeFiles/stream_replay.dir/stream_replay.cpp.o"
  "CMakeFiles/stream_replay.dir/stream_replay.cpp.o.d"
  "stream_replay"
  "stream_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
