# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-notrace/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_json_smoke "/usr/bin/cmake" "-DBENCH=/root/repo/build-notrace/bench/bench_fig7_ppi_cliques" "-DJSON_CHECK=/root/repo/build-notrace/tools/json_check" "-DOUT=/root/repo/build-notrace/bench/bench_smoke.json" "-P" "/root/repo/bench/bench_json_smoke.cmake")
set_tests_properties(bench_json_smoke PROPERTIES  WORKING_DIRECTORY "/root/repo/build-notrace/bench" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
