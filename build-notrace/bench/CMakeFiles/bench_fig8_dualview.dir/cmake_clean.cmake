file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_dualview.dir/bench_fig8_dualview.cc.o"
  "CMakeFiles/bench_fig8_dualview.dir/bench_fig8_dualview.cc.o.d"
  "bench_fig8_dualview"
  "bench_fig8_dualview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dualview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
