file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_bridge.dir/bench_fig10_bridge.cc.o"
  "CMakeFiles/bench_fig10_bridge.dir/bench_fig10_bridge.cc.o.d"
  "bench_fig10_bridge"
  "bench_fig10_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
