# Empty dependencies file for bench_fig10_bridge.
# This may be replaced when dependencies are built.
