file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_static_bridge.dir/bench_fig12_static_bridge.cc.o"
  "CMakeFiles/bench_fig12_static_bridge.dir/bench_fig12_static_bridge.cc.o.d"
  "bench_fig12_static_bridge"
  "bench_fig12_static_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_static_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
