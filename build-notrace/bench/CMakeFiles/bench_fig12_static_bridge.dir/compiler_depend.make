# Empty compiler generated dependencies file for bench_fig12_static_bridge.
# This may be replaced when dependencies are built.
