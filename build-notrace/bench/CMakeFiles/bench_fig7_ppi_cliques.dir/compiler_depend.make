# Empty compiler generated dependencies file for bench_fig7_ppi_cliques.
# This may be replaced when dependencies are built.
