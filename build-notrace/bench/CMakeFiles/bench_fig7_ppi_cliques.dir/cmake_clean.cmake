file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ppi_cliques.dir/bench_fig7_ppi_cliques.cc.o"
  "CMakeFiles/bench_fig7_ppi_cliques.dir/bench_fig7_ppi_cliques.cc.o.d"
  "bench_fig7_ppi_cliques"
  "bench_fig7_ppi_cliques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ppi_cliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
