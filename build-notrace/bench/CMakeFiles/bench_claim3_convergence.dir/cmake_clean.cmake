file(REMOVE_RECURSE
  "CMakeFiles/bench_claim3_convergence.dir/bench_claim3_convergence.cc.o"
  "CMakeFiles/bench_claim3_convergence.dir/bench_claim3_convergence.cc.o.d"
  "bench_claim3_convergence"
  "bench_claim3_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim3_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
