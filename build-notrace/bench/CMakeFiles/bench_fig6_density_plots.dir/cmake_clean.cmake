file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_density_plots.dir/bench_fig6_density_plots.cc.o"
  "CMakeFiles/bench_fig6_density_plots.dir/bench_fig6_density_plots.cc.o.d"
  "bench_fig6_density_plots"
  "bench_fig6_density_plots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_density_plots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
