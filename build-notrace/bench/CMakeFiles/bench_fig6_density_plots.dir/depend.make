# Empty dependencies file for bench_fig6_density_plots.
# This may be replaced when dependencies are built.
