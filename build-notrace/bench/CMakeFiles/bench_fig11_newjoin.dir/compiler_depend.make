# Empty compiler generated dependencies file for bench_fig11_newjoin.
# This may be replaced when dependencies are built.
