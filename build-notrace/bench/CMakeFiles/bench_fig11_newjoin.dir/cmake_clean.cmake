file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_newjoin.dir/bench_fig11_newjoin.cc.o"
  "CMakeFiles/bench_fig11_newjoin.dir/bench_fig11_newjoin.cc.o.d"
  "bench_fig11_newjoin"
  "bench_fig11_newjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_newjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
