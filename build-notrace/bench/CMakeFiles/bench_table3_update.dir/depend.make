# Empty dependencies file for bench_table3_update.
# This may be replaced when dependencies are built.
