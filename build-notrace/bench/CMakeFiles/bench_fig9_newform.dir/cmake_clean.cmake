file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_newform.dir/bench_fig9_newform.cc.o"
  "CMakeFiles/bench_fig9_newform.dir/bench_fig9_newform.cc.o.d"
  "bench_fig9_newform"
  "bench_fig9_newform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_newform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
